package inherit

import (
	"testing"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

// birdKB builds the canonical exception lattice:
//
//	animal ⊐ bird ⊐ {sparrow, penguin ⊐ {rockhopper, magic-penguin}}
//
// "flies" is asserted at bird, cancelled at penguin, restored at
// magic-penguin.
func birdKB(t *testing.T) (*machine.Machine, *kbgen.Generated, map[string]semnet.NodeID) {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("class")
	down := kb.Relation("subsumes")
	up := kb.Relation("is-a")
	ids := make(map[string]semnet.NodeID)
	add := func(name, parent string) {
		id := kb.MustAddNode(name, col)
		ids[name] = id
		if parent != "" {
			kb.MustAddLink(ids[parent], down, 1, id)
			kb.MustAddLink(id, up, 1, ids[parent])
		}
	}
	add("animal", "")
	add("bird", "animal")
	add("sparrow", "bird")
	add("penguin", "bird")
	add("rockhopper", "penguin")
	add("magic-penguin", "penguin")

	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	g := &kbgen.Generated{KB: kb}
	g.Rel.Subsumes = down
	g.Rel.IsA = up
	return m, g, ids
}

func names(g *kbgen.Generated, res *Result) map[string]bool {
	out := make(map[string]bool)
	for _, it := range res.Collected {
		out[g.KB.Name(g.KB.Canonical(it.Node))] = true
	}
	return out
}

func TestInheritNoExceptions(t *testing.T) {
	m, g, ids := birdKB(t)
	res, err := InheritWithExceptions(m, g, PropertyQuery{Source: ids["bird"]})
	if err != nil {
		t.Fatal(err)
	}
	got := names(g, res)
	for _, want := range []string{"bird", "sparrow", "penguin", "rockhopper", "magic-penguin"} {
		if !got[want] {
			t.Errorf("%s should fly", want)
		}
	}
	if got["animal"] {
		t.Error("the property must not spread upward")
	}
}

func TestExceptionBlocksSubtree(t *testing.T) {
	m, g, ids := birdKB(t)
	res, err := InheritWithExceptions(m, g, PropertyQuery{
		Source:     ids["bird"],
		Exceptions: []Exception{{At: ids["penguin"]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := names(g, res)
	for _, want := range []string{"bird", "sparrow"} {
		if !got[want] {
			t.Errorf("%s should still fly", want)
		}
	}
	for _, blocked := range []string{"penguin", "rockhopper", "magic-penguin"} {
		if got[blocked] {
			t.Errorf("%s must not fly (cancelled)", blocked)
		}
	}
}

func TestRestoreReenablesBelowBlock(t *testing.T) {
	m, g, ids := birdKB(t)
	res, err := InheritWithExceptions(m, g, PropertyQuery{
		Source: ids["bird"],
		Exceptions: []Exception{
			{At: ids["penguin"]},
			{At: ids["magic-penguin"], Restore: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := names(g, res)
	if !got["magic-penguin"] {
		t.Error("magic-penguin flies again")
	}
	if got["penguin"] || got["rockhopper"] {
		t.Error("ordinary penguins stay grounded")
	}
	if !got["sparrow"] {
		t.Error("sparrow unaffected")
	}
}

func TestExceptionAtSourceBlocksEverything(t *testing.T) {
	m, g, ids := birdKB(t)
	res, err := InheritWithExceptions(m, g, PropertyQuery{
		Source:     ids["bird"],
		Exceptions: []Exception{{At: ids["bird"]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := names(g, res)
	// The assertion at the source survives by definition; every
	// descendant is shadowed.
	if !got["bird"] {
		t.Error("assertion at the source survives")
	}
	for _, blocked := range []string{"sparrow", "penguin", "rockhopper"} {
		if got[blocked] {
			t.Errorf("%s must be shadowed", blocked)
		}
	}
}

func TestExceptionErrors(t *testing.T) {
	m, g, _ := birdKB(t)
	if _, err := InheritWithExceptions(m, g, PropertyQuery{Source: semnet.NodeID(999)}); err == nil {
		t.Error("bad source")
	}
	if _, err := InheritWithExceptions(m, g, PropertyQuery{
		Source:     0,
		Exceptions: []Exception{{At: semnet.NodeID(999)}},
	}); err == nil {
		t.Error("bad exception")
	}
}

func TestExceptionsOnGeneratedHierarchy(t *testing.T) {
	// On a synthetic hierarchy: block one mid-level class and verify the
	// holds-set equals reference reachability minus the blocked subtree.
	mach, g := loaded(t, 800)
	mid := g.Classes[len(g.Classes)/4]
	full, err := InheritWithExceptions(mach, g, PropertyQuery{Source: g.HierRoot})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := InheritWithExceptions(mach, g, PropertyQuery{
		Source:     g.HierRoot,
		Exceptions: []Exception{{At: mid}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Reached >= full.Reached {
		t.Fatalf("blocking a subtree must shrink the holds set: %d vs %d",
			blocked.Reached, full.Reached)
	}
	got := names(g, blocked)
	if got[g.KB.Name(mid)] {
		t.Error("the blocked class itself must not hold the property")
	}
}
