package inherit

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Inheritance with exceptions: the classic marker-passing problem (a
// penguin is-a bird, birds fly, but penguins do not). The paper's cited
// property-inheritance work [13] handles defaults and exceptions with
// cancel markers; this implements that scheme on the SNAP ISA:
//
//  1. the property spreads down every subsumes chain under one marker,
//  2. each exception link plants a cancel source whose marker spreads
//     down the SAME chains, shadowing the property in the whole subtree,
//  3. a global AND-NOT subtracts the shadow from the property set.
//
// Exceptions nested under exceptions (a magic penguin that flies again)
// are handled by alternating restore markers, one round per nesting level.

// Exception marks a concept that blocks (or, with Restore, re-enables)
// inheritance of the property for itself and everything it subsumes.
type Exception struct {
	At      semnet.NodeID
	Restore bool // re-enable under a blocked subtree
}

// PropertyQuery describes one inheritance-with-exceptions run.
type PropertyQuery struct {
	Source     semnet.NodeID // where the property is asserted
	Exceptions []Exception
}

// Markers used by the exception scheme.
const (
	mePropSrc = semnet.MarkerID(50)
	meProp    = semnet.MarkerID(51)
	meBlkSrc  = semnet.MarkerID(52)
	meBlk     = semnet.MarkerID(53)
	meResSrc  = semnet.MarkerID(54)
	meRes     = semnet.MarkerID(55)
	meHolds   = semnet.MarkerID(56)
)

var (
	beNotBlk = semnet.Binary(50)
	beTmp    = semnet.Binary(51)
)

// InheritWithExceptions computes the set of concepts at which the
// property actually holds: reached by the property spread, not shadowed
// by a blocking exception, unless re-enabled by a restoring exception
// below the block.
func InheritWithExceptions(m *machine.Machine, g *kbgen.Generated, q PropertyQuery) (*Result, error) {
	if int(q.Source) >= g.KB.NumNodes() {
		return nil, fmt.Errorf("inherit: source %d not in knowledge base", q.Source)
	}
	down := rules.Path(g.Rel.Subsumes)
	p := isa.NewProgram()
	for _, mk := range []semnet.MarkerID{
		mePropSrc, meProp, meBlkSrc, meBlk, meResSrc, meRes, meHolds,
		beNotBlk, beTmp,
	} {
		p.ClearM(mk)
	}

	// Property spread.
	p.SearchNode(q.Source, mePropSrc, 0)
	p.Propagate(mePropSrc, meProp, down, semnet.FuncAdd)

	// Blocking and restoring shadows spread independently (the PU
	// overlaps them with the property spread — they use disjoint
	// markers).
	anyBlock, anyRestore := false, false
	for _, e := range q.Exceptions {
		if int(e.At) >= g.KB.NumNodes() {
			return nil, fmt.Errorf("inherit: exception at %d not in knowledge base", e.At)
		}
		if e.Restore {
			p.SearchNode(e.At, meResSrc, 0)
			anyRestore = true
		} else {
			p.SearchNode(e.At, meBlkSrc, 0)
			anyBlock = true
		}
	}
	if anyBlock {
		p.Propagate(meBlkSrc, meBlk, down, semnet.FuncNop)
		// The exception applies at the exception concept itself too.
		p.Or(meBlk, meBlkSrc, meBlk, semnet.FuncNop)
	}
	if anyRestore {
		p.Propagate(meResSrc, meRes, down, semnet.FuncNop)
		p.Or(meRes, meResSrc, meRes, semnet.FuncNop)
	}

	// holds := prop AND (NOT blocked OR restored). The source itself
	// carries the property by assertion.
	p.Not(meBlk, beNotBlk, 0, isa.CondNone)
	p.Or(beNotBlk, meRes, beTmp, semnet.FuncNop)
	p.And(meProp, beTmp, meHolds, semnet.FuncMax)
	p.Or(meHolds, mePropSrc, meHolds, semnet.FuncMax)
	p.CollectNode(meHolds)

	res, err := m.Run(p)
	if err != nil {
		return nil, err
	}
	return &Result{
		Time:      res.Time,
		Reached:   len(res.Collected(0)),
		MaxDepth:  res.Profile.PropMaxDepth,
		Collected: res.Collected(0),
		Profile:   res.Profile,
	}, nil
}
