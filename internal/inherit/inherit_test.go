package inherit

import (
	"testing"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

func loaded(t *testing.T, nodes int) (*machine.Machine, *kbgen.Generated) {
	t.Helper()
	g := kbgen.MustGenerate(kbgen.Params{Nodes: nodes, Seed: 2})
	g.KB.Preprocess()
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	if need := (g.KB.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestInheritanceReachesAllLeaves(t *testing.T) {
	m, g := loaded(t, 800)
	res, err := Inheritance(m, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Error("no simulated time")
	}
	// Every hierarchy node below the root inherits the property.
	wantReached := len(g.Classes) + len(g.Leaves) - 1 // Classes includes leaves and root
	_ = wantReached
	if res.Leaves != len(g.Leaves) {
		t.Fatalf("leaves reached = %d, want %d", res.Leaves, len(g.Leaves))
	}
	if res.MaxDepth < 2 {
		t.Errorf("depth = %d, expected a multi-level hierarchy", res.MaxDepth)
	}
	// Inherited values are the accumulated is-a distance: positive at
	// every collected leaf.
	for _, it := range res.Collected {
		if it.Value <= 0 {
			t.Fatalf("leaf %d inherited nonpositive distance %v", it.Node, it.Value)
		}
	}
}

func TestClassificationIntersection(t *testing.T) {
	// Hand-built lattice: two properties with one common descendant.
	kb := semnet.NewKB()
	col := kb.ColorFor("class")
	down := kb.Relation("subsumes")
	a := kb.MustAddNode("a", col)
	b := kb.MustAddNode("b", col)
	both := kb.MustAddNode("both", col)
	onlyA := kb.MustAddNode("onlyA", col)
	kb.MustAddLink(a, down, 1, both)
	kb.MustAddLink(b, down, 1, both)
	kb.MustAddLink(a, down, 1, onlyA)

	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	gen := &kbgen.Generated{KB: kb}
	gen.Rel.Subsumes = down
	res, err := Classification(m, gen, []semnet.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 1 {
		t.Fatalf("classification found %d concepts, want 1", res.Reached)
	}
	if res.Collected[0].Node != both {
		t.Fatalf("classified %d, want %d", res.Collected[0].Node, both)
	}
}

func TestClassificationErrors(t *testing.T) {
	m, g := loaded(t, 200)
	if _, err := Classification(m, g, nil); err == nil {
		t.Error("empty property set must fail")
	}
	props := make([]semnet.NodeID, 17)
	if _, err := Classification(m, g, props); err == nil {
		t.Error("too many properties must fail")
	}
}

func TestInheritanceScalesWithKB(t *testing.T) {
	m1, g1 := loaded(t, 400)
	m2, g2 := loaded(t, 3200)
	r1, err := Inheritance(m1, g1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Inheritance(m2, g2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Reached <= r1.Reached {
		t.Fatal("larger hierarchy must reach more concepts")
	}
	if r2.Time <= r1.Time {
		t.Fatalf("inheritance over 3200 nodes (%v) should cost more than over 400 (%v)", r2.Time, r1.Time)
	}
}
