// Package mpmem models SNAP-1's multiport memory fabric: IDT four-port
// SRAMs with concurrent-read-exclusive-write (CREW) access, the cluster
// arbiter and semaphore table that regulate type-1 (shared variable)
// traffic, and the single-writer/single-reader queue regions used for
// type-2 (PU→MU microinstruction) and type-3 (MU→CU activation) traffic.
//
// The hardware's properties that matter to the architecture are
// reproduced: reads never contend, writes to shared control state go
// through an arbitrated semaphore table, and queue regions have small
// bounded capacities so senders block when a marker burst exceeds the
// buffering the interconnect can absorb (the Fig. 8 discussion).
package mpmem

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"snap1/internal/fault"
)

// NumPorts is the port count of one four-port memory.
const NumPorts = 4

// Arbiter grants mutually exclusive access to a semaphore table. Requests
// are served first-come-first-served; requests that arrive while no grant
// is outstanding and race each other are resolved by randomly assigned
// priority, as the paper's programmable-array-logic arbiter does.
type Arbiter struct {
	mu      sync.Mutex
	rng     *rand.Rand
	busy    bool
	waiters []chan struct{}

	grants    int64
	contended int64

	// inj, when armed, may stall a grant request (host time only; the
	// virtual-time model is unaffected). Set before traffic flows.
	inj *fault.Injector
}

// SetFaultInjector arms deterministic arbiter-stall injection (nil
// disarms). It must be called before the first Acquire; the injector is
// read without synchronization on the grant path.
func (a *Arbiter) SetFaultInjector(inj *fault.Injector) { a.inj = inj }

// NewArbiter returns an arbiter whose simultaneous-request tie-break is
// driven by the given seed, keeping contention behaviour reproducible.
func NewArbiter(seed int64) *Arbiter {
	return &Arbiter{rng: rand.New(rand.NewSource(seed))}
}

// Acquire blocks until the arbiter grants exclusive access.
func (a *Arbiter) Acquire() {
	if inj := a.inj; inj != nil {
		if d := inj.StallArb(); d > 0 {
			time.Sleep(d)
		}
	}
	a.mu.Lock()
	if !a.busy {
		a.busy = true
		a.grants++
		a.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	// Random insertion position models the random priority assignment
	// among requests pending at grant time.
	i := 0
	if n := len(a.waiters); n > 0 {
		i = a.rng.Intn(n + 1)
	}
	a.waiters = append(a.waiters, nil)
	copy(a.waiters[i+1:], a.waiters[i:])
	a.waiters[i] = ch
	a.contended++
	a.mu.Unlock()
	<-ch
}

// Release returns the grant, waking one waiter if any.
func (a *Arbiter) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.busy {
		panic("mpmem: Release without Acquire")
	}
	if len(a.waiters) == 0 {
		a.busy = false
		return
	}
	ch := a.waiters[0]
	a.waiters = a.waiters[1:]
	a.grants++
	close(ch)
}

// Stats reports total grants and how many were contended.
func (a *Arbiter) Stats() (grants, contended int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grants, a.contended
}

// SemaphoreTable is the arbitrated in-use flag table protecting critical
// sections within a cluster. Because multiport memories allow concurrent
// reads, a plain test-and-set is insufficient (both readers of the flag
// would claim ownership); every flag update goes through the arbiter.
type Table struct {
	arb   *Arbiter
	mu    sync.Mutex
	inUse []bool
	conds []*sync.Cond
}

// NewTable returns a semaphore table with n flags sharing one arbiter.
func NewTable(n int, arb *Arbiter) *Table {
	t := &Table{arb: arb, inUse: make([]bool, n), conds: make([]*sync.Cond, n)}
	for i := range t.conds {
		t.conds[i] = sync.NewCond(&t.mu)
	}
	return t
}

// Lock enters critical section sem, blocking while it is held.
func (t *Table) Lock(sem int) {
	for {
		t.arb.Acquire()
		t.mu.Lock()
		if !t.inUse[sem] {
			t.inUse[sem] = true
			t.mu.Unlock()
			t.arb.Release()
			return
		}
		// Flag is held: relinquish the table and wait for the holder.
		t.arb.Release()
		t.conds[sem].Wait()
		t.mu.Unlock()
	}
}

// TryLock attempts to enter critical section sem without blocking on the
// in-use flag (the arbiter round-trip still occurs).
func (t *Table) TryLock(sem int) bool {
	t.arb.Acquire()
	defer t.arb.Release()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inUse[sem] {
		return false
	}
	t.inUse[sem] = true
	return true
}

// Unlock leaves critical section sem.
func (t *Table) Unlock(sem int) {
	t.arb.Acquire()
	t.mu.Lock()
	if !t.inUse[sem] {
		t.mu.Unlock()
		t.arb.Release()
		panic(fmt.Sprintf("mpmem: Unlock of free semaphore %d", sem))
	}
	t.inUse[sem] = false
	t.conds[sem].Signal()
	t.mu.Unlock()
	t.arb.Release()
}

// Queue is a bounded queue region of a multiport memory. It is safe for
// any number of producer and consumer goroutines; within a SNAP-1 cluster
// the memory map dedicates each region to a single writer and single
// reader so no arbitration is required for type-2/3 traffic.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []T
	head     int
	n        int
	size     atomic.Int32 // mirrors n; lock-free empty-poll fast path
	closed   bool

	puts        int64
	gets        int64
	blockedPuts int64
	highWater   int
}

// NewQueue returns a queue region holding at most capacity entries.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		capacity = 1
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Put enqueues v, blocking while the region is full (the sending processor
// is blocked when a burst exceeds buffering capacity). It reports false if
// the queue was closed.
func (q *Queue[T]) Put(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed {
		q.blockedPuts++
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.buf[q.tailLocked()] = v
	q.n++
	q.size.Store(int32(q.n))
	q.puts++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	q.notEmpty.Signal()
	return true
}

// tailLocked returns the next free slot index without a modulo (the
// capacity is not a power of two in general, and an integer divide per
// message is measurable in the propagation hot path).
func (q *Queue[T]) tailLocked() int {
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	return i
}

// TryPut enqueues v only if space is available.
func (q *Queue[T]) TryPut(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.n == len(q.buf) {
		return false
	}
	q.buf[q.tailLocked()] = v
	q.n++
	q.size.Store(int32(q.n))
	q.puts++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	q.notEmpty.Signal()
	return true
}

// Get dequeues the oldest entry, blocking while the region is empty.
// ok is false once the queue is closed and drained.
func (q *Queue[T]) Get() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return v, false
	}
	return q.dequeueLocked(), true
}

// TryGet dequeues without blocking. An empty region is detected without
// taking the lock; the polling loops of the propagation engine hit this
// path once per work item.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.size.Load() == 0 {
		return v, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return v, false
	}
	return q.dequeueLocked(), true
}

// TryGetBatch dequeues up to len(buf) entries into buf in one critical
// section — one arbiter grant drains a whole burst instead of paying a
// lock round-trip per message. It returns the number dequeued (0 when the
// region is empty).
func (q *Queue[T]) TryGetBatch(buf []T) int {
	if q.size.Load() == 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.n
	if n > len(buf) {
		n = len(buf)
	}
	var zero T
	for i := 0; i < n; i++ {
		buf[i] = q.buf[q.head]
		q.buf[q.head] = zero
		if q.head++; q.head == len(q.buf) {
			q.head = 0
		}
	}
	if n > 0 {
		q.n -= n
		q.size.Store(int32(q.n))
		q.gets += int64(n)
		q.notFull.Broadcast()
	}
	return n
}

// TryPutBatch enqueues the longest prefix of vs that fits in one critical
// section and returns how many entries were accepted (0 when the region
// is full or closed). The unaccepted suffix is untouched.
func (q *Queue[T]) TryPutBatch(vs []T) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0
	}
	n := len(q.buf) - q.n
	if n > len(vs) {
		n = len(vs)
	}
	for i := 0; i < n; i++ {
		j := q.head + q.n + i
		if j >= len(q.buf) {
			j -= len(q.buf)
		}
		q.buf[j] = vs[i]
	}
	if n > 0 {
		q.n += n
		q.size.Store(int32(q.n))
		q.puts += int64(n)
		if q.n > q.highWater {
			q.highWater = q.n
		}
		q.notEmpty.Broadcast()
	}
	return n
}

func (q *Queue[T]) dequeueLocked() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	q.size.Store(int32(q.n))
	q.gets++
	q.notFull.Signal()
	return v
}

// Close wakes all blocked producers and consumers; subsequent Puts fail
// and Gets drain remaining entries then report ok=false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Len reports the current queue depth.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap reports the region capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Stats reports lifetime puts, gets, producer blocking events, and the
// deepest occupancy observed.
func (q *Queue[T]) Stats() (puts, gets, blockedPuts int64, highWater int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.puts, q.gets, q.blockedPuts, q.highWater
}
