package mpmem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestArbiterMutualExclusion(t *testing.T) {
	arb := NewArbiter(1)
	var held atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				arb.Acquire()
				if held.Add(1) != 1 {
					violations.Add(1)
				}
				held.Add(-1)
				arb.Release()
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
	grants, _ := arb.Stats()
	if grants != 8*200 {
		t.Fatalf("grants = %d, want 1600", grants)
	}
}

func TestArbiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire must panic")
		}
	}()
	NewArbiter(1).Release()
}

func TestSemaphoreTableCriticalSections(t *testing.T) {
	arb := NewArbiter(2)
	tbl := NewTable(4, arb)
	// Counters guarded by semaphores: lost updates reveal broken locking.
	counters := make([]int, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sem := (g + i) % 4
				tbl.Lock(sem)
				counters[sem]++
				tbl.Unlock(sem)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 8*500 {
		t.Fatalf("lost updates: total = %d, want 4000", total)
	}
}

func TestTryLock(t *testing.T) {
	tbl := NewTable(1, NewArbiter(3))
	if !tbl.TryLock(0) {
		t.Fatal("first TryLock must succeed")
	}
	if tbl.TryLock(0) {
		t.Fatal("second TryLock must fail while held")
	}
	tbl.Unlock(0)
	if !tbl.TryLock(0) {
		t.Fatal("TryLock after Unlock must succeed")
	}
	tbl.Unlock(0)
}

func TestUnlockFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of a free semaphore must panic")
		}
	}()
	NewTable(1, NewArbiter(1)).Unlock(0)
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Put(i) {
			t.Fatal("Put into open queue")
		}
	}
	if q.TryPut(9) {
		t.Fatal("TryPut into full queue must fail")
	}
	if q.Len() != 4 || q.Cap() != 4 {
		t.Fatal("Len/Cap")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue must fail")
	}
}

func TestQueueBlockingAndStats(t *testing.T) {
	q := NewQueue[int](2)
	q.Put(1)
	q.Put(2)
	done := make(chan struct{})
	go func() {
		q.Put(3) // blocks until a Get frees a slot
		close(done)
	}()
	// Wait until the producer has registered as blocked.
	for {
		if _, _, blocked, _ := q.Stats(); blocked == 1 {
			break
		}
	}
	if v, _ := q.Get(); v != 1 {
		t.Fatal("order")
	}
	<-done
	puts, gets, blocked, high := q.Stats()
	if puts != 3 || gets != 1 || high != 2 {
		t.Fatalf("stats: puts=%d gets=%d high=%d", puts, gets, high)
	}
	if blocked != 1 {
		t.Fatalf("blockedPuts = %d, want 1", blocked)
	}
}

func TestQueueClose(t *testing.T) {
	q := NewQueue[int](2)
	q.Put(7)
	q.Close()
	if q.Put(8) {
		t.Fatal("Put after Close must fail")
	}
	if v, ok := q.Get(); !ok || v != 7 {
		t.Fatal("Close must drain remaining entries")
	}
	if _, ok := q.Get(); ok {
		t.Fatal("drained closed queue must report !ok")
	}
}

func TestQueueCloseWakesBlockedProducer(t *testing.T) {
	q := NewQueue[int](1)
	q.Put(1)
	done := make(chan bool)
	go func() { done <- q.Put(2) }()
	q.Close()
	if <-done {
		t.Fatal("blocked Put must fail after Close")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int](8)
	const producers, items = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				q.Put(p*items + i)
			}
		}(p)
	}
	var seen sync.Map
	var got atomic.Int64
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Get()
				if !ok {
					return
				}
				if _, dup := seen.LoadOrStore(v, true); dup {
					t.Errorf("duplicate delivery of %d", v)
				}
				got.Add(1)
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if got.Load() != producers*items {
		t.Fatalf("delivered %d, want %d", got.Load(), producers*items)
	}
}

func TestQueueZeroCapacityClamped(t *testing.T) {
	q := NewQueue[int](0)
	if q.Cap() != 1 {
		t.Fatal("capacity must clamp to 1")
	}
}

func TestQueueBatchFIFOAndWrap(t *testing.T) {
	q := NewQueue[int](5)
	for i := 0; i < 4; i++ {
		if !q.TryPut(i) {
			t.Fatalf("TryPut(%d)", i)
		}
	}
	buf := make([]int, 2)
	if n := q.TryGetBatch(buf); n != 2 || buf[0] != 0 || buf[1] != 1 {
		t.Fatalf("TryGetBatch = %d, buf = %v", n, buf)
	}
	// head is now 2 with 2 entries; a 4-entry batch must accept only the
	// 3 that fit, writing across the ring's wrap point.
	if n := q.TryPutBatch([]int{4, 5, 6, 7}); n != 3 {
		t.Fatalf("TryPutBatch into 3 free slots accepted %d", n)
	}
	want := []int{2, 3, 4, 5, 6}
	out := make([]int, 8)
	if n := q.TryGetBatch(out); n != 5 {
		t.Fatalf("drain batch = %d", n)
	}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("drained %v, want %v", out[:5], want)
		}
	}
	if n := q.TryGetBatch(out); n != 0 {
		t.Fatalf("empty queue batch = %d", n)
	}
}

func TestQueueBatchStatsAndClose(t *testing.T) {
	q := NewQueue[int](8)
	if n := q.TryPutBatch([]int{1, 2, 3}); n != 3 {
		t.Fatalf("TryPutBatch = %d", n)
	}
	buf := make([]int, 8)
	if n := q.TryGetBatch(buf); n != 3 {
		t.Fatalf("TryGetBatch = %d", n)
	}
	puts, gets, _, high := q.Stats()
	if puts != 3 || gets != 3 || high != 3 {
		t.Fatalf("stats = %d puts, %d gets, high %d; want 3,3,3", puts, gets, high)
	}
	q.Close()
	if n := q.TryPutBatch([]int{9}); n != 0 {
		t.Fatal("TryPutBatch after Close must accept nothing")
	}
}

func TestQueueBatchWakesBlockedProducer(t *testing.T) {
	q := NewQueue[int](2)
	q.Put(1)
	q.Put(2)
	unblocked := make(chan struct{})
	go func() {
		q.Put(3) // blocks until a batch drain frees space
		close(unblocked)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-unblocked:
		t.Fatal("Put proceeded while full")
	default:
	}
	buf := make([]int, 2)
	if n := q.TryGetBatch(buf); n != 2 {
		t.Fatalf("drain = %d", n)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("batch drain did not wake blocked producer")
	}
}

func TestQueueBatchConcurrent(t *testing.T) {
	const producers, items = 4, 500
	q := NewQueue[int](7) // odd capacity exercises the wrap arithmetic
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]int, 0, 8)
			for i := 0; i < items; i++ {
				batch = append(batch, p*items+i)
				if len(batch) == cap(batch) || i == items-1 {
					for len(batch) > 0 {
						n := q.TryPutBatch(batch)
						batch = batch[:copy(batch, batch[n:])]
						if n == 0 {
							runtime.Gosched()
						}
					}
					batch = batch[:0]
				}
			}
		}(p)
	}
	seen := make(map[int]bool, producers*items)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]int, 8)
		for len(seen) < producers*items {
			n := q.TryGetBatch(buf)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, v := range buf[:n] {
				if seen[v] {
					t.Errorf("duplicate item %d", v)
					return
				}
				seen[v] = true
			}
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer did not drain all items")
	}
	if len(seen) != producers*items {
		t.Fatalf("delivered %d distinct items, want %d", len(seen), producers*items)
	}
}
