package snap1_test

import (
	"os"
	"path/filepath"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/kbfile"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

// loadSample parses a shipped knowledge-base / assembly-program pair from
// examples/data.
func loadSample(t *testing.T, kbName, progName string) (*semnet.KB, *isa.Program) {
	t.Helper()
	kbf, err := os.Open(filepath.Join("examples", "data", kbName))
	if err != nil {
		t.Fatal(err)
	}
	defer kbf.Close()
	kb, err := kbfile.Parse(kbf)
	if err != nil {
		t.Fatal(err)
	}
	kb.Preprocess()

	progf, err := os.Open(filepath.Join("examples", "data", progName))
	if err != nil {
		t.Fatal(err)
	}
	defer progf.Close()
	prog, err := isa.NewAssembler(kb).Assemble(progf)
	if err != nil {
		t.Fatal(err)
	}
	return kb, prog
}

func runSample(t *testing.T, kb *semnet.KB, prog *isa.Program, clusters int) (*machine.Machine, *machine.Result) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Clusters = clusters
	cfg.NodesPerCluster = 16
	cfg.Deterministic = true
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// TestShippedSampleFiles exercises the exact files cmd/snapsim's
// documentation points at: the animals knowledge base and the ancestors
// program must keep producing the documented result.
func TestShippedSampleFiles(t *testing.T) {
	kb, prog := loadSample(t, "animals.kb", "ancestors.snap")
	_, res := runSample(t, kb, prog, 4)

	// dog's ancestors plus the has-fur property reached through the
	// spread(is-a, has) switch; can-fly must stay unreached (it hangs off
	// bird, not off dog's chain).
	got := make(map[string]float32)
	for _, it := range res.Collected(0) {
		got[kb.Name(kb.Canonical(it.Node))] = it.Value
	}
	want := map[string]float32{"mammal": 1, "animal": 2, "thing": 3, "has-fur": 2}
	if len(got) != len(want) {
		t.Fatalf("collected %v, want %v", got, want)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
	if _, bad := got["can-fly"]; bad {
		t.Error("can-fly leaked across the hierarchy")
	}
}

// TestShippedExceptionsProgram checks the hand-written SNAP assembly
// rendition of inheritance-with-exceptions against its documented result:
// bird and sparrow fly, penguins do not, the magic penguin flies again.
func TestShippedExceptionsProgram(t *testing.T) {
	kb, prog := loadSample(t, "inheritance.kb", "exceptions.snap")
	_, res := runSample(t, kb, prog, 2)

	got := make(map[string]bool)
	for _, it := range res.Collected(0) {
		got[kb.Name(kb.Canonical(it.Node))] = true
	}
	for _, want := range []string{"bird", "sparrow", "magic-penguin"} {
		if !got[want] {
			t.Errorf("%s should fly (got %v)", want, got)
		}
	}
	for _, blocked := range []string{"penguin", "rockhopper", "animal"} {
		if got[blocked] {
			t.Errorf("%s must not fly", blocked)
		}
	}
}
