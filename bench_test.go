// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus micro-benchmarks of the simulator's hot
// machinery. Each experiment benchmark reports the headline simulated
// quantity as a custom metric so `go test -bench` output documents the
// reproduced result alongside host cost.
package snap1_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"snap1/internal/engine"
	"snap1/internal/experiments"
	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/nlu"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// BenchmarkTableIV regenerates the MUC-4 sentence parse-time table.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var total float64
			for _, r := range res.Rows {
				total += (r.PPTime + r.MB9K).Milliseconds()
			}
			b.ReportMetric(total/float64(len(res.Rows)), "sim-ms/sentence")
		}
	}
}

// BenchmarkFig6Profile regenerates the instruction frequency/time profile.
func BenchmarkFig6Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, tf := res.PropagateShares()
			b.ReportMetric(tf*100, "propagate-time-%")
		}
	}
}

// BenchmarkFig8Traffic regenerates the per-barrier message distribution.
func BenchmarkFig8Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Mean, "msgs/barrier")
			b.ReportMetric(float64(res.Max), "burst-max")
		}
	}
}

// BenchmarkFig15Inheritance regenerates the SNAP-1 vs CM-2 scalability
// comparison.
func BenchmarkFig15Inheritance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res.Rows {
				if r.Nodes == 6400 {
					b.ReportMetric(float64(r.CM2)/float64(r.SNAP), "cm2/snap@6.4K")
				}
			}
		}
	}
}

// BenchmarkFig16AlphaSpeedup regenerates the α-parallelism speedup sweep.
func BenchmarkFig16AlphaSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Speedup[1000], "speedup-a1000@72PE")
			b.ReportMetric(last.Speedup[100], "speedup-a100@72PE")
		}
	}
}

// BenchmarkFig17BetaSpeedup regenerates the β-overlap saturation sweep.
func BenchmarkFig17BetaSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res.Rows {
				if r.Beta == 16 {
					b.ReportMetric(r.Speedup, "speedup@beta16")
				}
			}
		}
	}
}

// BenchmarkFig18ClusterSweep regenerates the per-class time vs clusters
// profile.
func BenchmarkFig18ClusterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig18(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PropagateRatio(), "prop-time-1v16")
		}
	}
}

// BenchmarkFig19KBSweep regenerates the per-class time vs KB-size profile.
func BenchmarkFig19KBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig19(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[len(res.Rows)-1].PropFrac*100, "propagate-%@16K")
		}
	}
}

// BenchmarkFig20PropCount regenerates the operation-count growth study.
func BenchmarkFig20PropCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig20(nil, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rows[len(res.Rows)-1].Propagates), "propagates@16K")
		}
	}
}

// BenchmarkFig21Overheads regenerates the parallel-overhead component
// breakdown.
func BenchmarkFig21Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig21(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Overhead.Collection.Microseconds(), "collect-us@32cl")
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the simulator machinery itself.
// ---------------------------------------------------------------------

// BenchmarkPropagatePhase is the canonical host-cost benchmark of the
// marker-propagation hot path (tracked in BENCH_PROPAGATE.json, see
// docs/PERF.md), measured on both execution engines with allocation
// reporting over two workload shapes:
//
//   - chains: one overlap-window flush of α=256 depth-10 chains on the
//     paper's 16-cluster array — a sparse frontier (one source per
//     chain), the original tracked workload;
//   - dense: a MUC-4-style generated knowledge base (kbgen.Generate
//     with the newswire micro-domain) with SET-MARKER making every node
//     a propagation source, so the source-scan frontier is fully dense
//     and the relation-table sweep dominates.
//
// The machine is reused across iterations, so the numbers reflect the
// steady state a query-serving pool runs in.
func BenchmarkPropagatePhase(b *testing.B) {
	for _, eng := range []struct {
		name string
		det  bool
	}{{"concurrent", false}, {"lockstep", true}} {
		b.Run(eng.name, func(b *testing.B) { benchPhaseChains(b, eng.det) })
		b.Run("dense/"+eng.name, func(b *testing.B) { benchPhaseDense(b, eng.det) })
	}
}

func benchPhaseChains(b *testing.B, det bool) {
	w := kbgen.Chains(1, 256, 10, 1)
	w.KB.Preprocess()
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, 0)
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	benchPhaseRun(b, det, w.KB, p)
}

func benchPhaseDense(b *testing.B, det bool) {
	g, err := kbgen.Generate(kbgen.Params{Nodes: 6000, Seed: 42, WithDomain: true})
	if err != nil {
		b.Fatal(err)
	}
	g.KB.Preprocess()
	p := isa.NewProgram()
	p.Set(0, 0) // SET-MARKER: every node becomes a source
	p.Propagate(0, 1, rules.Path(g.Rel.IsA), semnet.FuncAdd)
	p.Barrier()
	benchPhaseRun(b, det, g.KB, p)
}

func benchPhaseRun(b *testing.B, det bool, kb *semnet.KB, p *isa.Program) {
	cfg := machine.PaperConfig()
	cfg.Deterministic = det
	if need := (kb.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	var tasks int64
	run := func() {
		m.ClearMarkers()
		res, err := m.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		tasks = res.Profile.PropSteps
	}
	run() // steady state: pools grown, workers started
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	if tasks > 0 {
		b.ReportMetric(float64(tasks), "tasks/phase")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tasks), "ns/task")
	}
}

// BenchmarkEngineThroughput measures end-to-end query serving on the
// concurrent engine layer: parallel submitters over a pooled replica set,
// the path every snapd request takes.
func BenchmarkEngineThroughput(b *testing.B) {
	w := kbgen.Chains(1, 128, 8, 1)
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	e, err := engine.New(w.KB, engine.WithReplicas(4), engine.WithMachineConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, 0)
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := e.Submit(context.Background(), p)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.Collected(0)) == 0 {
				b.Error("empty collection")
				return
			}
		}
	})
}

// BenchmarkEngineSharded measures the sharded work-stealing engine
// across pool sizes and workload temperatures, reporting queries/s:
//
//   - hot: every submitter repeats one query — after the first execution
//     the result cache serves everything, measuring the lock-free-read
//     serving ceiling;
//   - cold: 256 distinct queries with result caching disabled — every
//     submission runs on a replica, measuring dispatch + execution;
//   - mixed: half hot, half a 1024-query sweep against a 128-entry
//     result cache, so the sweep always misses (LRU thrash) while the
//     hot query stays resident — the contended mixed workload of the
//     serving-layer acceptance bar.
func BenchmarkEngineSharded(b *testing.B) {
	w := kbgen.Chains(1, 128, 8, 1)
	for _, replicas := range []int{1, 4, 16} {
		for _, mix := range []string{"hot", "cold", "mixed"} {
			b.Run(fmt.Sprintf("r=%d/%s", replicas, mix), func(b *testing.B) {
				benchEngineSharded(b, w, replicas, mix)
			})
		}
	}
}

// shardedProgram builds the canonical chain-propagation query with a
// distinguishing initial marker value, so variants hash differently but
// cost the same to execute.
func shardedProgram(w *kbgen.Workload, variant int) *isa.Program {
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, float32(variant))
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(1)
	return p
}

func benchEngineSharded(b *testing.B, w *kbgen.Workload, replicas int, mix string) {
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	opts := []engine.Option{engine.WithReplicas(replicas), engine.WithMachineConfig(cfg), engine.WithQueueCap(4096)}
	poolSize := 0
	switch mix {
	case "cold":
		opts = append(opts, engine.WithResultCache(0))
		poolSize = 256
	case "mixed":
		opts = append(opts, engine.WithResultCache(128))
		poolSize = 1024
	}
	e, err := engine.New(w.KB, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()

	hot := shardedProgram(w, -1)
	pool := make([]*isa.Program, poolSize)
	for i := range pool {
		pool[i] = shardedProgram(w, i)
	}
	// Warm the hot path so the steady state is measured.
	if _, err := e.Submit(context.Background(), hot); err != nil {
		b.Fatal(err)
	}

	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := hot
			if poolSize > 0 {
				n := next.Add(1)
				if mix == "cold" || n%2 == 0 {
					p = pool[int(n)%poolSize]
				}
			}
			res, err := e.Submit(context.Background(), p)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.Collected(0)) == 0 {
				b.Error("empty collection")
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkEngineBringUp measures cold start: engine.New over a 16K-node
// knowledge base, 16 replicas — one download plus 15 shared-topology
// clones, brought up concurrently.
func BenchmarkEngineBringUp(b *testing.B) {
	g, err := kbgen.Generate(kbgen.Params{Nodes: 16000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := engine.New(g.KB, engine.WithReplicas(16))
		if err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkStoreBooleanSweep measures one AND-MARKER sweep over a full
// 1024-node cluster partition.
func BenchmarkStoreBooleanSweep(b *testing.B) {
	s := semnet.NewStore(1024)
	for i := 0; i < 1024; i++ {
		if _, err := s.AddNode(semnet.NodeID(i), 0, semnet.FuncNop); err != nil {
			b.Fatal(err)
		}
		if i%3 == 0 {
			s.Set(i, 0)
		}
		if i%2 == 0 {
			s.Set(i, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.And(0, 1, 2, semnet.FuncNop)
	}
}

// BenchmarkPropagationLockstep measures a full MIMD propagation phase
// (α=256, depth 10) on the deterministic engine.
func BenchmarkPropagationLockstep(b *testing.B) {
	benchPropagation(b, true)
}

// BenchmarkPropagationConcurrent measures the same phase on the
// goroutine-per-cluster engine.
func BenchmarkPropagationConcurrent(b *testing.B) {
	benchPropagation(b, false)
}

func benchPropagation(b *testing.B, det bool) {
	w := kbgen.Chains(1, 256, 10, 1)
	w.KB.Preprocess()
	cfg := machine.PaperConfig()
	cfg.Deterministic = det
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadKB(w.KB); err != nil {
		b.Fatal(err)
	}
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, 0)
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearMarkers()
		if _, err := m.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSentenceParse measures one full two-stage sentence parse on the
// evaluation configuration.
func BenchmarkSentenceParse(b *testing.B) {
	g, err := kbgen.Generate(kbgen.Params{Nodes: 5000, Seed: 42, WithDomain: true})
	if err != nil {
		b.Fatal(err)
	}
	g.KB.Preprocess()
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		b.Fatal(err)
	}
	p := nlu.NewParser(m, g)
	s := g.Domain.Sentences[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Parse(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Winner != s.Expect {
			b.Fatalf("parsed %q", res.Winner)
		}
	}
}

// BenchmarkKBGenerate measures synthetic knowledge-base generation.
func BenchmarkKBGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kbgen.Generate(kbgen.Params{Nodes: 8000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadKB measures partitioning and table download of a 16K-node
// network into the full 32-cluster array.
func BenchmarkLoadKB(b *testing.B) {
	g, err := kbgen.Generate(kbgen.Params{Nodes: 16000, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	g.KB.Preprocess()
	cfg := machine.DefaultConfig()
	if need := (g.KB.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadKB(g.KB); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation and extension benchmarks.
// ---------------------------------------------------------------------

// BenchmarkAblationPartition compares partitioning functions on the parse
// workload (the design choice behind semantically-based allocation).
func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPartition()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res.Rows {
				if r.Name == "semantic" {
					b.ReportMetric(r.Cut*100, "semantic-cut-%")
				}
			}
		}
	}
}

// BenchmarkAblationMUs sweeps marker units per cluster (the four-vs-five
// PE cluster design choice).
func BenchmarkAblationMUs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMUs()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[len(res.Rows)-1].Speedup, "speedup@4MU")
		}
	}
}

// BenchmarkSpeechDecode runs the PASS-style lattice understanding study.
func BenchmarkSpeechDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SpeechStudy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanBeta, "mean-beta")
		}
	}
}

// BenchmarkScaleStudy grows the array with the knowledge base toward the
// paper's million-concept goal.
func BenchmarkScaleStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scale(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.ParseTime.Milliseconds(), "parse-sim-ms@256K")
		}
	}
}
