module snap1

go 1.22
